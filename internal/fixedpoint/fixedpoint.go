// Package fixedpoint implements the paper's closed-form and semi-closed-form
// analyses: the LIA fixed points of Appendices A and B and §III-C, and the
// "theoretical optimum with probing cost" baselines — the allocation an
// optimal window-based algorithm achieves given that every established path
// must carry at least one MSS per RTT.
//
// Conventions: capacities and rates are in Mb/s (per user, as in the paper's
// normalized plots), RTTs in seconds, loss probabilities per packet.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
)

// Params holds the shared analysis constants.
type Params struct {
	RTT float64 // round-trip time in seconds (the paper uses 0.15)
	MSS int     // segment size in bytes (1500)
}

// DefaultParams are the testbed values of §III.
var DefaultParams = Params{RTT: 0.15, MSS: 1500}

func (p Params) fill() Params {
	if p.RTT == 0 {
		p.RTT = DefaultParams.RTT
	}
	if p.MSS == 0 {
		p.MSS = DefaultParams.MSS
	}
	return p
}

// ProbeRate is the minimum per-path traffic of a window-based algorithm:
// one MSS per RTT, in Mb/s.
func (p Params) ProbeRate() float64 {
	p = p.fill()
	return float64(p.MSS) * 8 / p.RTT / 1e6
}

// pktsPerSec converts Mb/s to packets per second.
func (p Params) pktsPerSec(mbps float64) float64 {
	p = p.fill()
	return mbps * 1e6 / (float64(p.MSS) * 8)
}

// lossFor returns the loss probability at which a TCP user with the
// configured RTT reaches the given rate in Mb/s: p = 2/(x·rtt)².
func (p Params) lossFor(mbps float64) float64 {
	pk := p.pktsPerSec(mbps) * p.fill().RTT
	return 2 / (pk * pk)
}

// Bisect finds a root of f in [lo, hi] (f(lo) and f(hi) must straddle zero).
func Bisect(f func(float64) float64, lo, hi float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("fixedpoint: no sign change on [%g, %g] (f: %g, %g)", lo, hi, flo, fhi)
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 || (hi-lo) < 1e-14*math.Max(1, math.Abs(mid)) {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// AResult is the Scenario A (Fig. 1) allocation.
type AResult struct {
	// X1, X2 are a type1 user's rates over the private and shared paths;
	// Y is a type2 user's rate (all Mb/s).
	X1, X2, Y float64
	// Type1Norm and Type2Norm are (x1+x2)/C1 and y/C2.
	Type1Norm, Type2Norm float64
	// P1, P2 are the loss probabilities at the server link and shared AP.
	P1, P2 float64
}

// ScenarioALIA solves Appendix A's fixed point for MPTCP with LIA: z =
// √(p1/p2) is the unique positive root of z + (N1/N2)·z²/(1+2z²) = C2/C1
// (Eq. 10), from which all rates follow.
func ScenarioALIA(n1, n2, c1, c2 float64, pr Params) (AResult, error) {
	if n1 <= 0 || n2 <= 0 || c1 <= 0 || c2 <= 0 {
		return AResult{}, errors.New("fixedpoint: nonpositive scenario A parameters")
	}
	pr = pr.fill()
	ratio := n1 / n2
	f := func(z float64) float64 {
		return z + ratio*z*z/(1+2*z*z) - c2/c1
	}
	z, err := Bisect(f, 1e-9, 1e6)
	if err != nil {
		return AResult{}, err
	}
	p1 := pr.lossFor(c1) // x1+x2 = C1 = √(2/p1)/rtt
	res := AResult{
		X2:        c1 * z * z / (1 + 2*z*z),
		Y:         c1 * z,
		Type1Norm: 1,
		Type2Norm: c1 * z / c2,
		P1:        p1,
		P2:        p1 / (z * z),
	}
	res.X1 = c1 - res.X2
	return res, nil
}

// ScenarioAOptimum is the theoretical optimum with probing cost for Scenario
// A (Appendix A.2): the extra path cannot help type1 users, so an optimal
// algorithm sends only the 1-MSS-per-RTT probe over the shared AP.
func ScenarioAOptimum(n1, n2, c1, c2 float64, pr Params) AResult {
	pr = pr.fill()
	probe := pr.ProbeRate()
	y := c2 - n1/n2*probe
	if y < 0 {
		y = 0
	}
	return AResult{
		X1:        c1 - probe,
		X2:        probe,
		Y:         y,
		Type1Norm: 1,
		Type2Norm: y / c2,
	}
}

// CResult is the Scenario C (Fig. 5) allocation.
type CResult struct {
	// X1, X2 are a multipath user's rates over AP1 and AP2; Y is a
	// single-path user's rate (Mb/s).
	X1, X2, Y float64
	// MultiNorm and SingleNorm are (x1+x2)/C1 and y/C2.
	MultiNorm, SingleNorm float64
	// P1, P2 are the loss probabilities at the two APs.
	P1, P2 float64
}

// ScenarioCLIA solves the §III-C fixed point for LIA. In the congested-AP1
// regime (C1/C2 < 1/(2+N1/N2)) all users receive the fair share; otherwise
// z = √(p1/p2) is the positive root of z³ + (N1/N2)z² + z = C2/C1 and
//
//	(x1+x2)/C1 = 1+z²,   y/C2 = 1 − (N1·C1)/(N2·C2)·z².
func ScenarioCLIA(n1, n2, c1, c2 float64, pr Params) (CResult, error) {
	if n1 <= 0 || n2 <= 0 || c1 <= 0 || c2 <= 0 {
		return CResult{}, errors.New("fixedpoint: nonpositive scenario C parameters")
	}
	pr = pr.fill()
	if c1/c2 < 1/(2+n1/n2) {
		share := (n1*c1 + n2*c2) / (n1 + n2)
		return CResult{
			X1: c1, X2: share - c1, Y: share,
			MultiNorm: share / c1, SingleNorm: share / c2,
		}, nil
	}
	ratio := n1 / n2
	f := func(z float64) float64 {
		return z*z*z + ratio*z*z + z - c2/c1
	}
	z, err := Bisect(f, 0, 1e6)
	if err != nil {
		return CResult{}, err
	}
	res := CResult{
		X1:         c1,
		X2:         c1 * z * z,
		Y:          c2 - n1/n2*c1*z*z,
		MultiNorm:  1 + z*z,
		SingleNorm: 1 - n1*c1/(n2*c2)*z*z,
	}
	// x1+x2 = √(2/p1)/rtt·... total multipath rate satisfies
	// √(2/p1)/rtt = C1(1+z²); p2 = p1/z².
	p1 := pr.lossFor(c1 * (1 + z*z))
	res.P1 = p1
	res.P2 = p1 / (z * z)
	return res, nil
}

// ScenarioCOptimum is the optimum with probing cost for Scenario C: the
// proportionally fair allocation adjusted for the 1-MSS-per-RTT probe
// (dashed lines of Fig. 5(b)).
func ScenarioCOptimum(n1, n2, c1, c2 float64, pr Params) CResult {
	pr = pr.fill()
	probe := pr.ProbeRate()
	share := (n1*c1 + n2*c2) / (n1 + n2)
	multi := math.Max(c1+probe, share)
	single := math.Min(c2-n1/n2*probe, share)
	if single < 0 {
		single = 0
	}
	return CResult{
		X1: c1, X2: multi - c1, Y: single,
		MultiNorm: multi / c1, SingleNorm: single / c2,
	}
}

// BResult is the Scenario B (Figs. 3-4, Tables I-II) allocation.
type BResult struct {
	// BluePerUser and RedPerUser are x1+x2 and y1+y2 in Mb/s.
	BluePerUser, RedPerUser float64
	// BlueNorm and RedNorm are the paper's Fig. 4 normalization:
	// N(x1+x2)/CT and N(y1+y2)/CT.
	BlueNorm, RedNorm float64
	// Aggregate is N(blue+red) in Mb/s.
	Aggregate float64
	// PX, PT are the ISP bottleneck loss probabilities (LIA analysis only).
	PX, PT float64
}

// ScenarioBLIA solves Appendix B's fixed point for LIA. With Red users
// single-path the system reduces to Scenario C (Blue multipath over X and T,
// Red single-path on T). With Red upgraded to MPTCP, z = pX/pT solves the
// regime-dependent balance equation; the 5/9 boundary of the appendix
// separates the two regimes.
func ScenarioBLIA(n, cx, ct float64, redMultipath bool, pr Params) (BResult, error) {
	if n <= 0 || cx <= 0 || ct <= 0 {
		return BResult{}, errors.New("fixedpoint: nonpositive scenario B parameters")
	}
	pr = pr.fill()
	if !redMultipath {
		c, err := ScenarioCLIA(n, n, cx/n, ct/n, pr)
		if err != nil {
			return BResult{}, err
		}
		return BResult{
			BluePerUser: c.X1 + c.X2,
			RedPerUser:  c.Y,
			BlueNorm:    n * (c.X1 + c.X2) / ct,
			RedNorm:     n * c.Y / ct,
			Aggregate:   n * (c.X1 + c.X2 + c.Y),
			PX:          c.P1,
			PT:          c.P2,
		}, nil
	}
	// Red multipath. Unknowns: z = pX/pT and u = √(2/pT)/rtt (Mb/s).
	// Loss-throughput (Eq. 2) gives, with m = √(max(2/pX, 2/pT))/rtt:
	//   x1 = m/(1+z), x2 = m·z/(1+z), y1 = u/(2+z), y1+y2 = u.
	// Capacity: CX/N = x1+y1, CT/N = x2+y1+y2. Dividing eliminates u.
	capRatio := func(z float64) float64 {
		if z >= 1 {
			// pX ≥ pT: best path has loss pT, m = u.
			f1 := 1/(1+z) + 1/(2+z)
			f2 := z/(1+z) + 1
			return f1 / f2
		}
		// pX < pT: m = u/√z.
		sz := math.Sqrt(z)
		f1 := 1/((1+z)*sz) + 1/(2+z)
		f2 := sz/(1+z) + 1
		return f1 / f2
	}
	target := cx / ct
	// capRatio decreases in z, crossing 5/9 at z = 1.
	f := func(z float64) float64 { return capRatio(z) - target }
	z, err := Bisect(f, 1e-9, 1e9)
	if err != nil {
		return BResult{}, err
	}
	var f2 float64
	if z >= 1 {
		f2 = z/(1+z) + 1
	} else {
		f2 = math.Sqrt(z)/(1+z) + 1
	}
	u := ct / n / f2 // = √(2/pT)/rtt in Mb/s
	blue := u        // x1+x2 = m·(1/(1+z)+z/(1+z)) = m
	if z < 1 {
		blue = u / math.Sqrt(z)
	}
	red := u
	pt := pr.lossFor(u)
	return BResult{
		BluePerUser: blue,
		RedPerUser:  red,
		BlueNorm:    n * blue / ct,
		RedNorm:     n * red / ct,
		Aggregate:   n * (blue + red),
		PX:          z * pt,
		PT:          pt,
	}, nil
}

// ScenarioBOptimum is the optimum with probing cost for Scenario B
// (Appendix B.2, Eqs. 11-14).
func ScenarioBOptimum(n, cx, ct float64, redMultipath bool, pr Params) BResult {
	pr = pr.fill()
	probe := pr.ProbeRate()
	var blue, red float64
	if !redMultipath {
		// Case 1 (Eqs. 11-12).
		blue = math.Max(cx/n+probe, (ct+cx)/(2*n))
		red = math.Min(ct/n-probe, (cx+ct)/(2*n))
	} else {
		// Case 2 (Eqs. 13-14).
		blue = math.Max(cx/n, (ct+cx)/(2*n)-probe/2)
		red = math.Min(ct/n-probe, (cx+ct)/(2*n)-probe/2)
	}
	if red < 0 {
		red = 0
	}
	return BResult{
		BluePerUser: blue,
		RedPerUser:  red,
		BlueNorm:    n * blue / ct,
		RedNorm:     n * red / ct,
		Aggregate:   n * (blue + red),
	}
}
