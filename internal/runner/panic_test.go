package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestMapPanicRecovered: a crashing job must not kill the process — Map
// recovers it into a *PanicError wrapping ErrJobPanic, runs every other job
// to completion, releases the crashed job's pool slot, and leaks nothing.
func TestMapPanicRecovered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		before := runtime.NumGoroutine()
		out, err := Map(context.Background(), p, 20, func(i int) int {
			if i == 7 {
				panic("boom")
			}
			return i + 1
		})
		if !errors.Is(err, ErrJobPanic) {
			t.Fatalf("workers=%d: err = %v, want ErrJobPanic", workers, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err %T does not unwrap to *PanicError", workers, err)
		}
		if pe.Job != 7 || pe.Value != "boom" {
			t.Fatalf("workers=%d: PanicError{Job: %d, Value: %v}, want job 7 value boom", workers, pe.Job, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "panic") {
			t.Fatalf("workers=%d: stack missing the panic site:\n%s", workers, pe.Stack)
		}
		if !strings.Contains(err.Error(), "job 7 panicked: boom") {
			t.Fatalf("workers=%d: Error() = %q", workers, err)
		}
		for i, v := range out {
			want := i + 1
			if i == 7 {
				want = 0 // the crashed slot holds its zero value
			}
			if v != want {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, want)
			}
		}
		if n := len(p.sem); n != 0 {
			t.Fatalf("workers=%d: %d pool slots still held after the panic", workers, n)
		}
		waitGoroutines(t, before)
		// The pool must be fully reusable after the crash.
		if got := mapNoCtx(p, 5, func(i int) int { return i }); got[4] != 4 {
			t.Fatalf("workers=%d: pool unusable after panic: %v", workers, got)
		}
	}
}

// TestMapPanicLowestIndex: with several crashing jobs the reported error is
// the lowest-index one, independent of scheduling, so a crash report is as
// deterministic as the results.
func TestMapPanicLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), New(workers), 40, func(i int) int {
			if i == 3 || i == 11 || i == 31 {
				panic(i)
			}
			spin()
			return i
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Job != 3 || pe.Value != 3 {
			t.Fatalf("workers=%d: reported job %d (value %v), want lowest index 3", workers, pe.Job, pe.Value)
		}
	}
}

// TestMapPanicInNestedFanOut is the harness.RunAll shape: orchestration
// goroutines each Map over one shared pool. Job 0 of one inner Map panics;
// that Map alone reports the crash while its siblings complete normally,
// and the shared pool ends with every slot free.
func TestMapPanicInNestedFanOut(t *testing.T) {
	p := New(3)
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	errs := make([]error, 5)
	results := make([][]int, 5)
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = Map(context.Background(), p, 10, func(i int) int {
				if g == 2 && i == 0 {
					panic("inner fan-out crash")
				}
				spin()
				return g*100 + i
			})
		}(g)
	}
	wg.Wait()
	for g := range errs {
		if g == 2 {
			var pe *PanicError
			if !errors.As(errs[2], &pe) || pe.Job != 0 {
				t.Fatalf("crashed sweep err = %v, want *PanicError for job 0", errs[2])
			}
			continue
		}
		if errs[g] != nil {
			t.Fatalf("sibling sweep %d failed: %v", g, errs[g])
		}
		for i, v := range results[g] {
			if v != g*100+i {
				t.Fatalf("sibling sweep %d result[%d] = %d", g, i, v)
			}
		}
	}
	if n := len(p.sem); n != 0 {
		t.Fatalf("%d pool slots still held after nested crash", n)
	}
	waitGoroutines(t, before)
}

// TestMapPanicPreCancelled: a pre-cancelled context still runs no jobs, so
// no panic can fire and the error stays context.Canceled.
func TestMapPanicPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Map(ctx, New(workers), 10, func(i int) int { panic("must not run") })
		if !errors.Is(err, context.Canceled) || errors.Is(err, ErrJobPanic) {
			t.Fatalf("workers=%d: err = %v, want bare context.Canceled", workers, err)
		}
	}
}
