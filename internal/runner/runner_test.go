package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
	if got := New(5).Size(); got != 5 {
		t.Fatalf("New(5).Size() = %d, want 5", got)
	}
	if !New(1).Sequential() || New(2).Sequential() {
		t.Fatal("Sequential() wrong for sizes 1 and 2")
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		got := Map(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	p := New(4)
	if got := Map(p, 0, func(i int) int { t.Fatal("fn called for n=0"); return 0 }); len(got) != 0 {
		t.Fatalf("n=0 returned %d results", len(got))
	}
	if got := Map(p, 1, func(i int) string { return "only" }); got[0] != "only" {
		t.Fatalf("n=1 result %q", got[0])
	}
}

// trackPeak records the high-water mark of concurrently running jobs.
type trackPeak struct {
	cur, peak atomic.Int64
}

func (tp *trackPeak) enter() {
	n := tp.cur.Add(1)
	for {
		old := tp.peak.Load()
		if n <= old || tp.peak.CompareAndSwap(old, n) {
			return
		}
	}
}

func (tp *trackPeak) exit() { tp.cur.Add(-1) }

func spin() {
	for j := 0; j < 1000; j++ {
		runtime.Gosched()
	}
}

// TestMapBoundsConcurrency checks the pool's guarantee: a single Map never
// runs more than Size jobs at once.
func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	var tp trackPeak
	Map(p, 50, func(i int) struct{} {
		tp.enter()
		spin() // busy the slot long enough for other goroutines to pile up
		tp.exit()
		return struct{}{}
	})
	if got := tp.peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", got, workers)
	}
}

// TestConcurrentMapsShareBound checks the harness.RunAll shape: several
// orchestration goroutines each Map over one shared pool, and the bound
// holds across all of them combined.
func TestConcurrentMapsShareBound(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := New(workers)
		var tp trackPeak
		var wg sync.WaitGroup
		results := make([][]int, 6)
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = Map(p, 8, func(i int) int {
					tp.enter()
					spin()
					tp.exit()
					return g*100 + i
				})
			}(g)
		}
		wg.Wait()
		if got := tp.peak.Load(); got > int64(workers) {
			t.Fatalf("workers=%d: observed %d concurrent jobs across sibling Maps", workers, got)
		}
		for g := range results {
			for i, v := range results[g] {
				if v != g*100+i {
					t.Fatalf("workers=%d: goroutine %d result[%d] = %d", workers, g, i, v)
				}
			}
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the package-level determinism
// property: seed-style derivation from the index gives identical results
// for any pool size.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		return Map(New(workers), 64, func(i int) string {
			// Stand-in for "simulate with seed base+i".
			h := uint64(i)*2654435761 + 12345
			return fmt.Sprintf("job%d:%x", i, h)
		})
	}
	ref := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestMapParallelWrites hammers the result slice from many goroutines so
// `go test -race ./internal/runner` exercises the synchronization.
func TestMapParallelWrites(t *testing.T) {
	p := New(8)
	var mu sync.Mutex
	seen := map[int]bool{}
	Map(p, 200, func(i int) struct{} {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return struct{}{}
	})
	if len(seen) != 200 {
		t.Fatalf("ran %d distinct jobs, want 200", len(seen))
	}
}
