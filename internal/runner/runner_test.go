package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
	if got := New(5).Size(); got != 5 {
		t.Fatalf("New(5).Size() = %d, want 5", got)
	}
	if !New(1).Sequential() || New(2).Sequential() {
		t.Fatal("Sequential() wrong for sizes 1 and 2")
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		got := mapNoCtx(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	p := New(4)
	if got := mapNoCtx(p, 0, func(i int) int { t.Fatal("fn called for n=0"); return 0 }); len(got) != 0 {
		t.Fatalf("n=0 returned %d results", len(got))
	}
	if got := mapNoCtx(p, 1, func(i int) string { return "only" }); got[0] != "only" {
		t.Fatalf("n=1 result %q", got[0])
	}
}

// trackPeak records the high-water mark of concurrently running jobs.
type trackPeak struct {
	cur, peak atomic.Int64
}

func (tp *trackPeak) enter() {
	n := tp.cur.Add(1)
	for {
		old := tp.peak.Load()
		if n <= old || tp.peak.CompareAndSwap(old, n) {
			return
		}
	}
}

func (tp *trackPeak) exit() { tp.cur.Add(-1) }

func spin() {
	for j := 0; j < 1000; j++ {
		runtime.Gosched()
	}
}

// TestMapBoundsConcurrency checks the pool's guarantee: a single Map never
// runs more than Size jobs at once.
func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	var tp trackPeak
	mapNoCtx(p, 50, func(i int) struct{} {
		tp.enter()
		spin() // busy the slot long enough for other goroutines to pile up
		tp.exit()
		return struct{}{}
	})
	if got := tp.peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", got, workers)
	}
}

// TestConcurrentMapsShareBound checks the harness.RunAll shape: several
// orchestration goroutines each Map over one shared pool, and the bound
// holds across all of them combined.
func TestConcurrentMapsShareBound(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := New(workers)
		var tp trackPeak
		var wg sync.WaitGroup
		results := make([][]int, 6)
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				results[g] = mapNoCtx(p, 8, func(i int) int {
					tp.enter()
					spin()
					tp.exit()
					return g*100 + i
				})
			}(g)
		}
		wg.Wait()
		if got := tp.peak.Load(); got > int64(workers) {
			t.Fatalf("workers=%d: observed %d concurrent jobs across sibling Maps", workers, got)
		}
		for g := range results {
			for i, v := range results[g] {
				if v != g*100+i {
					t.Fatalf("workers=%d: goroutine %d result[%d] = %d", workers, g, i, v)
				}
			}
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the package-level determinism
// property: seed-style derivation from the index gives identical results
// for any pool size.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		return mapNoCtx(New(workers), 64, func(i int) string {
			// Stand-in for "simulate with seed base+i".
			h := uint64(i)*2654435761 + 12345
			return fmt.Sprintf("job%d:%x", i, h)
		})
	}
	ref := run(1)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestMapParallelWrites hammers the result slice from many goroutines so
// `go test -race ./internal/runner` exercises the synchronization.
func TestMapParallelWrites(t *testing.T) {
	p := New(8)
	var mu sync.Mutex
	seen := map[int]bool{}
	mapNoCtx(p, 200, func(i int) struct{} {
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return struct{}{}
	})
	if len(seen) != 200 {
		t.Fatalf("ran %d distinct jobs, want 200", len(seen))
	}
}

// mapNoCtx runs Map under a background context — the historical
// context-free contract, which never errors.
func mapNoCtx[T any](p *Pool, n int, fn func(i int) T) []T {
	out, err := Map(context.Background(), p, n, fn)
	if err != nil {
		panic(err)
	}
	return out
}

// TestMapCancellation checks the prompt-cancellation contract: cancelling
// mid-Map stops unstarted jobs, joins in-flight ones, returns ctx.Err(),
// and leaks no goroutines.
func TestMapCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		p := New(workers)
		var started atomic.Int64
		before := runtime.NumGoroutine()
		out, err := Map(ctx, p, 100, func(i int) int {
			if started.Add(1) == 1 {
				cancel()
			}
			spin()
			return i + 1
		})
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: result slice length %d", workers, len(out))
		}
		if n := started.Load(); n > int64(workers)+1 {
			t.Fatalf("workers=%d: %d jobs started after cancellation", workers, n)
		}
		waitGoroutines(t, before)
		cancel()
	}
}

// TestMapPreCancelled checks that an already-cancelled context runs no jobs.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		out, err := Map(ctx, New(workers), 50, func(i int) int {
			t.Error("job ran under a cancelled context")
			return i
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		for i, v := range out {
			if v != 0 {
				t.Fatalf("workers=%d: result[%d] = %d, want zero value", workers, i, v)
			}
		}
		waitGoroutines(t, before)
	}
}

// waitGoroutines polls until the goroutine count returns to the baseline
// (modulo unrelated runtime churn), failing the test on a leak.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), baseline)
}
