// Package runner is the parallel experiment engine: a bounded worker pool
// that fans independent simulation jobs out across CPUs and hands their
// results back in submission order, so callers can merge them exactly as a
// sequential loop would have.
//
// Design constraints, in order:
//
//  1. Determinism. A job's inputs (notably its RNG seed) must never depend
//     on scheduling: callers derive every job from its index, and Map
//     returns results slotted by index. Byte-identical output for any
//     worker count falls out of merging in index order.
//  2. An exact, shareable bound. Every job blocks for a pool slot and holds
//     it only while running, so across all concurrent Map calls on one
//     Pool at most Size jobs execute simultaneously — the bound a user
//     sets with -j is a guarantee, not a hint. The flip side: a job must
//     not call Map on the pool it runs on (it would hold its slot while
//     waiting for more slots — deadlock). Orchestration layers that fan
//     out above Map (e.g. harness.RunAll running experiments that each
//     sweep jobs) use plain goroutines and let only leaf work enter the
//     pool.
//  3. Cheap when sequential. A one-slot pool runs the whole Map inline on
//     the calling goroutine under a single acquire — no goroutines, and
//     jobs execute in index order: Workers=1 is the reference sequential
//     execution the parallel path is tested against.
//  4. Prompt cancellation, bounded by one job. Cancelling the context
//     stops new jobs from starting: workers waiting for a pool slot give
//     the slot up and exit, and acquired slots re-check the context before
//     running. Jobs already executing are never interrupted (a simulation
//     does not poll the context), so Map returns within one job boundary
//     of the cancellation, with every spawned goroutine joined — no leaks.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrJobPanic is the sentinel wrapped by every recovered job panic;
// errors.Is(err, ErrJobPanic) classifies a Map failure as a crash rather
// than a cancellation.
var ErrJobPanic = errors.New("job panicked")

// PanicError reports one recovered job panic: which job crashed, the value
// it panicked with, and the goroutine stack captured at the panic site. It
// wraps ErrJobPanic.
type PanicError struct {
	Job   int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

func (e *PanicError) Unwrap() error { return ErrJobPanic }

// panicRecorder keeps the lowest-index panic of one Map call, so the error
// a caller sees does not depend on goroutine scheduling.
type panicRecorder struct {
	mu  sync.Mutex
	err *PanicError
}

// wrap runs one job, converting a panic into a recorded PanicError. The
// recover sits in the job's own frame, so the captured stack includes the
// panic site and the pool-slot release deferred around the call still runs.
func (r *panicRecorder) wrap(i int, run func()) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		buf := make([]byte, 64<<10)
		pe := &PanicError{Job: i, Value: v, Stack: buf[:runtime.Stack(buf, false)]}
		r.mu.Lock()
		if r.err == nil || i < r.err.Job {
			r.err = pe
		}
		r.mu.Unlock()
	}()
	run()
}

// Progress serializes cumulative (done, total) job-progress notifications
// for one fan-out call. The counter update and its notification happen
// under one lock so the stream an observer sees is monotone: with bare
// atomics, two workers could increment in one order and deliver their
// callbacks in the other, making the observed counter go backwards.
type Progress struct {
	mu          sync.Mutex
	fn          func(done, total int)
	done, total int
}

// NewProgress wraps a sink (nil is allowed and makes every method a no-op).
func NewProgress(fn func(done, total int)) *Progress {
	return &Progress{fn: fn}
}

// Add registers n upcoming jobs and notifies the sink.
func (p *Progress) Add(n int) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total += n
	p.fn(p.done, p.total)
}

// Step counts one finished job and notifies the sink.
func (p *Progress) Step() {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.fn(p.done, p.total)
}

// Workers normalizes a worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool bounds how many jobs execute simultaneously, across every
// concurrent Map call sharing it. The zero value is not usable; construct
// with New.
type Pool struct {
	sem chan struct{}
}

// New returns a pool of size Workers(workers).
func New(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers))}
}

// Size reports the pool's bound on concurrently executing jobs.
func (p *Pool) Size() int { return cap(p.sem) }

// Sequential reports whether the pool runs jobs one at a time.
func (p *Pool) Sequential() bool { return cap(p.sem) == 1 }

// acquire blocks for a pool slot, giving up when the context is cancelled
// first. It reports whether a slot was obtained.
func (p *Pool) acquire(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return false
	default:
	}
	select {
	case p.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Map runs fn(0), fn(1), …, fn(n-1) on the pool and returns their results
// in index order regardless of completion order. fn must derive everything
// it needs (seeds included) from its index argument, must not communicate
// with other jobs, and must not call Map on the same pool (see the package
// comment; nest with plain goroutines above Map instead).
//
// Cancelling ctx stops unstarted jobs and returns ctx.Err() once every
// in-flight job has finished; the result slice then holds zero values at
// the indices that never ran. With a background context the execution —
// and, for deterministic fn, the results — are identical to the historical
// context-free Map.
//
// A job that panics does not kill the process: the panic is recovered in
// the job's slot (which is released normally), the remaining jobs run to
// completion, and Map returns a *PanicError wrapping ErrJobPanic for the
// lowest-index crashed job, with the panic value and stack attached. The
// crashed index holds its zero value in the result slice. Both execution
// paths recover identically, so a crash reproduces at any worker count.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	var rec panicRecorder
	if p.Sequential() || n == 1 {
		if !p.acquire(ctx) {
			return out, ctx.Err()
		}
		defer func() { <-p.sem }()
		for i := range out {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			rec.wrap(i, func() { out[i] = fn(i) })
		}
		if rec.err != nil {
			return out, rec.err
		}
		return out, ctx.Err()
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if !p.acquire(ctx) {
				return
			}
			defer func() { <-p.sem }()
			rec.wrap(i, func() { out[i] = fn(i) })
		}(i)
	}
	wg.Wait()
	if rec.err != nil {
		return out, rec.err
	}
	return out, ctx.Err()
}
