// Package runner is the parallel experiment engine: a bounded worker pool
// that fans independent simulation jobs out across CPUs and hands their
// results back in submission order, so callers can merge them exactly as a
// sequential loop would have.
//
// Design constraints, in order:
//
//  1. Determinism. A job's inputs (notably its RNG seed) must never depend
//     on scheduling: callers derive every job from its index, and Map
//     returns results slotted by index. Byte-identical output for any
//     worker count falls out of merging in index order.
//  2. An exact, shareable bound. Every job blocks for a pool slot and holds
//     it only while running, so across all concurrent Map calls on one
//     Pool at most Size jobs execute simultaneously — the bound a user
//     sets with -j is a guarantee, not a hint. The flip side: a job must
//     not call Map on the pool it runs on (it would hold its slot while
//     waiting for more slots — deadlock). Orchestration layers that fan
//     out above Map (e.g. harness.RunAll running experiments that each
//     sweep jobs) use plain goroutines and let only leaf work enter the
//     pool.
//  3. Cheap when sequential. A one-slot pool runs the whole Map inline on
//     the calling goroutine under a single acquire — no goroutines, and
//     jobs execute in index order: Workers=1 is the reference sequential
//     execution the parallel path is tested against.
package runner

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool bounds how many jobs execute simultaneously, across every
// concurrent Map call sharing it. The zero value is not usable; construct
// with New.
type Pool struct {
	sem chan struct{}
}

// New returns a pool of size Workers(workers).
func New(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers))}
}

// Size reports the pool's bound on concurrently executing jobs.
func (p *Pool) Size() int { return cap(p.sem) }

// Sequential reports whether the pool runs jobs one at a time.
func (p *Pool) Sequential() bool { return cap(p.sem) == 1 }

// Map runs fn(0), fn(1), …, fn(n-1) on the pool and returns their results
// in index order regardless of completion order. fn must derive everything
// it needs (seeds included) from its index argument, must not communicate
// with other jobs, and must not call Map on the same pool (see the package
// comment; nest with plain goroutines above Map instead).
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if p.Sequential() || n == 1 {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			p.sem <- struct{}{}
			defer func() { <-p.sem }()
			out[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return out
}
