package mptcpsim

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// wrap buries err under n layers of fmt.Errorf("%w") wrapping, simulating
// callers that annotate as errors travel up their own stacks.
func wrap(err error, n int) error {
	for i := 0; i < n; i++ {
		err = fmt.Errorf("layer %d: %w", i, err)
	}
	return err
}

// TestSentinelMatrix checks errors.Is for every sentinel × construction ×
// wrap depth: each boundary error matches exactly its own sentinel, at any
// depth, and never a sibling.
func TestSentinelMatrix(t *testing.T) {
	sentinels := []error{ErrUnknownExperiment, ErrInvalidConfig, ErrInvalidSpec, ErrCanceled}
	names := []string{"ErrUnknownExperiment", "ErrInvalidConfig", "ErrInvalidSpec", "ErrCanceled"}
	cause := errors.New("root cause")

	for si, sentinel := range sentinels {
		for _, tc := range []struct {
			kind string
			err  error
		}{
			{"sentinel-only", apiErr("run", "exp", sentinel, nil)},
			{"sentinel+cause", apiErr("run", "exp", sentinel, cause)},
		} {
			for depth := 0; depth <= 3; depth++ {
				err := wrap(tc.err, depth)
				for sj, other := range sentinels {
					got := errors.Is(err, other)
					want := si == sj
					if got != want {
						t.Errorf("%s depth %d: errors.Is(err, %s) = %v, want %v",
							tc.kind, depth, names[sj], got, want)
					}
				}
				if tc.kind == "sentinel+cause" && !errors.Is(err, cause) {
					t.Errorf("%s depth %d: cause lost from the chain", tc.kind, depth)
				}
			}
		}
	}
}

// TestErrorAs checks that *Error is recoverable via errors.As from any
// wrap depth with Op and ID intact.
func TestErrorAs(t *testing.T) {
	base := apiErr("simulate", "twopath", ErrInvalidSpec, errors.New("negative rtt"))
	for depth := 0; depth <= 3; depth++ {
		err := wrap(base, depth)
		var e *Error
		if !errors.As(err, &e) {
			t.Fatalf("depth %d: errors.As(*Error) failed", depth)
		}
		if e.Op != "simulate" || e.ID != "twopath" {
			t.Errorf("depth %d: got Op=%q ID=%q, want simulate/twopath", depth, e.Op, e.ID)
		}
	}
}

// TestErrorMessage pins the boundary rendering with and without an ID.
func TestErrorMessage(t *testing.T) {
	withID := apiErr("run", "olia-vs-lia", ErrUnknownExperiment, nil)
	if got, want := withID.Error(), "mptcpsim: run olia-vs-lia: unknown experiment"; got != want {
		t.Errorf("with ID: got %q, want %q", got, want)
	}
	noID := apiErr("collect", "", ErrInvalidConfig, errors.New("workers < 0"))
	if got, want := noID.Error(), "mptcpsim: collect: invalid configuration: workers < 0"; got != want {
		t.Errorf("without ID: got %q, want %q", got, want)
	}
}

// TestClassifyCancellation checks the documented double-match: a canceled
// run satisfies both errors.Is(err, ErrCanceled) and
// errors.Is(err, context.Canceled) — likewise for deadline expiry — while
// other causes pass through unclassified.
func TestClassifyCancellation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cause  error
		ctxErr error // also expected to match, when non-nil
	}{
		{"canceled", context.Canceled, context.Canceled},
		{"deadline", context.DeadlineExceeded, context.DeadlineExceeded},
		{"wrapped-canceled", fmt.Errorf("rpc: %w", context.Canceled), context.Canceled},
	} {
		err := classify("run-all", "", tc.cause)
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: not ErrCanceled", tc.name)
		}
		if !errors.Is(err, tc.ctxErr) {
			t.Errorf("%s: context error lost from the chain", tc.name)
		}
		var e *Error
		if !errors.As(err, &e) || e.Op != "run-all" {
			t.Errorf("%s: *Error envelope missing or wrong op", tc.name)
		}
	}

	plain := errors.New("disk full")
	err := classify("analyze", "x", plain)
	if errors.Is(err, ErrCanceled) {
		t.Error("unrelated cause misclassified as ErrCanceled")
	}
	if !errors.Is(err, plain) {
		t.Error("unrelated cause lost from the chain")
	}
	if classify("analyze", "x", nil) != nil {
		t.Error("classify(nil) must stay nil")
	}
}

// TestClassifyDistinctSentinels pins that cancellation does not bleed into
// the validation sentinels and vice versa.
func TestClassifyDistinctSentinels(t *testing.T) {
	err := classify("run", "exp", context.Canceled)
	for _, other := range []error{ErrUnknownExperiment, ErrInvalidConfig, ErrInvalidSpec} {
		if errors.Is(err, other) {
			t.Errorf("canceled run matches %v", other)
		}
	}
	if errors.Is(apiErr("run", "exp", ErrInvalidSpec, nil), context.Canceled) {
		t.Error("validation error matches context.Canceled")
	}
}
