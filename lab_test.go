package mptcpsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mptcpsim/internal/sim"
)

// quickCfg is a fast-but-real configuration for cancellation tests: many
// short simulation jobs.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Duration = 2 * sim.Second
	cfg.Warmup = 200 * sim.Millisecond
	cfg.DCDuration = 500 * sim.Millisecond
	cfg.DCWarmup = 100 * sim.Millisecond
	cfg.Seeds = 3
	return cfg
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline, failing on a leak.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), baseline)
}

// TestLabRunAllCancelMidFlight pins the cancellation contract: cancelling
// mid-RunAll stops the run at the next job boundary, returns an error
// matching both ErrCanceled and context.Canceled, and leaks no goroutines.
func TestLabRunAllCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var jobsDone, jobsTotal atomic.Int64
	lab := NewLab(WithConfig(quickCfg()), WithWorkers(2), WithProgress(func(ev ProgressEvent) {
		if ev.Kind == ProgressJobs {
			jobsDone.Store(int64(ev.Done))
			jobsTotal.Store(int64(ev.Total))
			if ev.Done >= 1 {
				cancel() // cancel as soon as the first job completes
			}
		}
	}))
	var buf bytes.Buffer
	err := lab.RunAll(ctx, []string{"fig1b", "fig1c", "fig9"}, FormatText, &buf)
	if err == nil {
		t.Fatal("cancelled RunAll returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled in chain", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	var apiError *Error
	if !errors.As(err, &apiError) || apiError.Op != "run-all" {
		t.Fatalf("err = %#v, want *Error with Op run-all", err)
	}
	// Within one job boundary: with 2 workers, at most the jobs already
	// in flight at cancellation finish — nowhere near the full sweep.
	if done, total := jobsDone.Load(), jobsTotal.Load(); total > 0 && done >= total {
		t.Fatalf("all %d jobs ran despite cancellation after the first", total)
	}
	waitGoroutines(t, before)
}

// TestLabFuzzCancelMidFlight is the same contract for Lab.Fuzz.
func TestLabFuzzCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	lab := NewLab(WithWorkers(2), WithProgress(func(ev ProgressEvent) {
		if ev.Kind == ProgressJobs {
			done.Store(int64(ev.Done))
			if ev.Done >= 1 {
				cancel()
			}
		}
	}))
	_, err := lab.Fuzz(ctx, FuzzOptions{N: 100, Seed: 7})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if n := done.Load(); n >= 100 {
		t.Fatalf("all %d scenarios ran despite cancellation after the first", n)
	}
	waitGoroutines(t, before)
}

// TestLabPreCancelled checks every context-aware method rejects an
// already-cancelled context without doing work.
func TestLabPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lab := NewLab(WithConfig(quickCfg()))
	if _, err := lab.Collect(ctx, "fig1b"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Collect: %v", err)
	}
	if err := lab.RunAll(ctx, nil, FormatText, &bytes.Buffer{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunAll: %v", err)
	}
	if _, err := lab.Run(ctx, validSpec()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run: %v", err)
	}
	if _, err := lab.Fuzz(ctx, FuzzOptions{N: 3}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Fuzz: %v", err)
	}
	if _, err := lab.Conform(ctx, ConformanceOptions{DurationSec: 1, Seeds: 1}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Conform: %v", err)
	}
	if _, err := lab.Simulate(ctx, Scenario{Paths: []Path{{RateMbps: 5}}, DurationSec: 2}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Simulate: %v", err)
	}
}

func validSpec() ScenarioSpec {
	return ScenarioSpec{
		Name: "t", Seed: 1, WarmupSec: 0.2, DurationSec: 1,
		Links: []ScenarioLink{{RateMbps: 2}},
		Paths: []ScenarioPath{{Links: []int{0}, DelayMs: 10}},
		Flows: []ScenarioFlow{{Algorithm: "olia", Paths: []int{0}}},
	}
}

// TestLabCompletedThenCancelled: cancelling after a run completed must not
// have affected its output.
func TestLabCompletedThenCancelled(t *testing.T) {
	cfg := quickCfg()
	cfg.Seeds = 1
	ids := []string{"fig1b"}
	var plain bytes.Buffer
	if err := NewLab(WithConfig(cfg)).RunAll(context.Background(), ids, FormatText, &plain); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var late bytes.Buffer
	err := NewLab(WithConfig(cfg)).RunAll(ctx, ids, FormatText, &late)
	cancel() // after completion
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != late.String() {
		t.Fatal("output differs between plain and completed-then-cancelled runs")
	}
}

// TestTypedErrors pins the errors.Is/As-matchable family at the boundary.
func TestTypedErrors(t *testing.T) {
	ctx := context.Background()
	lab := NewLab()

	_, err := lab.Collect(ctx, "nope")
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("Collect unknown: %v", err)
	}
	var apiError *Error
	if !errors.As(err, &apiError) || apiError.ID != "nope" || apiError.Op != "collect" {
		t.Fatalf("Collect unknown: %#v", err)
	}
	if err := lab.RunAll(ctx, []string{"nope"}, FormatText, &bytes.Buffer{}); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("RunAll unknown: %v", err)
	}
	if err := lab.RunAll(ctx, nil, Format("bogus"), &bytes.Buffer{}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("RunAll bad format: %v", err)
	}
	bad := DefaultConfig()
	bad.Workers = -1
	if _, err := NewLab(WithConfig(bad)).Collect(ctx, "fig1b"); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Collect bad config: %v", err)
	}
	if _, err := lab.Run(ctx, ScenarioSpec{DurationSec: 1}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("Run bad spec: %v", err)
	}
	if _, err := lab.Simulate(ctx, Scenario{}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("Simulate bad scenario: %v", err)
	}
	if _, err := lab.Analyze([]float64{0.1}, []float64{0.1, 0.2}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("Analyze bad input: %v", err)
	}
}

// TestDeprecatedWrappersByteIdentical proves every deprecated free
// function produces byte-identical output to its Lab equivalent.
func TestDeprecatedWrappersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	ctx := context.Background()
	cfg := quickCfg()
	cfg.Seeds = 1
	lab := NewLab(WithConfig(cfg))
	ids := []string{"fig1b", "fig17"}

	t.Run("RunAllFormat", func(t *testing.T) {
		var a, b bytes.Buffer
		if err := RunAllFormat(ids, cfg, FormatJSON, &a); err != nil {
			t.Fatal(err)
		}
		if err := lab.RunAll(ctx, ids, FormatJSON, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatal("RunAllFormat output differs from Lab.RunAll")
		}
	})
	t.Run("RunAll", func(t *testing.T) {
		var a, b bytes.Buffer
		if err := RunAll(ids, cfg, &a); err != nil {
			t.Fatal(err)
		}
		if err := lab.RunAll(ctx, ids, FormatText, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatal("RunAll output differs from Lab.RunAll")
		}
	})
	t.Run("CollectExperiment", func(t *testing.T) {
		ra, err := CollectExperiment("fig1b", cfg)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := lab.Collect(ctx, "fig1b")
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(ra)
		jb, _ := json.Marshal(rb)
		if !bytes.Equal(ja, jb) {
			t.Fatal("CollectExperiment result differs from Lab.Collect")
		}
	})
	t.Run("RunExperiment", func(t *testing.T) {
		var a, b strings.Builder
		if err := RunExperiment("fig17", cfg, &a); err != nil {
			t.Fatal(err)
		}
		r, err := lab.Collect(ctx, "fig17")
		if err != nil {
			t.Fatal(err)
		}
		if err := RenderResult(r, FormatText, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatal("RunExperiment output differs from Lab.Collect + RenderResult")
		}
	})
	t.Run("Simulate", func(t *testing.T) {
		sc := Scenario{
			Algorithm:   "olia",
			Paths:       []Path{{RateMbps: 10, BackgroundTCP: 3}, {RateMbps: 10, BackgroundTCP: 6}},
			DurationSec: 5, Seed: 2,
		}
		ra, err := Simulate(sc)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := lab.Simulate(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("Simulate differs from Lab.Simulate:\n%+v\n%+v", ra, rb)
		}
	})
	t.Run("RunScenario", func(t *testing.T) {
		ra, err := RunScenario(validSpec())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := lab.Run(ctx, validSpec())
		if err != nil {
			t.Fatal(err)
		}
		if ra.Digest() != rb.Digest() {
			t.Fatal("RunScenario digest differs from Lab.Run")
		}
	})
	t.Run("FuzzScenarios", func(t *testing.T) {
		ra, err := FuzzScenarios(FuzzOptions{N: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := lab.Fuzz(ctx, FuzzOptions{N: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(ra)
		jb, _ := json.Marshal(rb)
		if !bytes.Equal(ja, jb) {
			t.Fatal("FuzzScenarios report differs from Lab.Fuzz")
		}
	})
	t.Run("AnalyzeTwoPath", func(t *testing.T) {
		ra, err := AnalyzeTwoPath([]float64{0.01, 0.04}, []float64{0.1, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := lab.Analyze([]float64{0.01, 0.04}, []float64{0.1, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatal("AnalyzeTwoPath differs from Lab.Analyze")
		}
	})
}

// TestLabProgressEvents pins the progress stream's shape for a collection:
// a start event, monotone job counters reaching done == total, and a
// finished event.
func TestLabProgressEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short")
	}
	cfg := quickCfg()
	cfg.Seeds = 1
	var events []ProgressEvent
	lab := NewLab(WithConfig(cfg), WithProgress(func(ev ProgressEvent) {
		events = append(events, ev) // serialized by the Lab
	}))
	if _, err := lab.Collect(context.Background(), "fig1b"); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	if events[0].Kind != ProgressExperimentStarted || events[0].Experiment != "fig1b" {
		t.Fatalf("first event %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Kind != ProgressExperimentFinished || last.Err != nil {
		t.Fatalf("last event %+v", last)
	}
	prevDone := -1
	var finalDone, finalTotal int
	for _, ev := range events {
		if ev.Kind != ProgressJobs {
			continue
		}
		if ev.Done < prevDone {
			t.Fatalf("job counter went backwards: %d after %d", ev.Done, prevDone)
		}
		if ev.Done > ev.Total {
			t.Fatalf("done %d exceeds total %d", ev.Done, ev.Total)
		}
		prevDone = ev.Done
		finalDone, finalTotal = ev.Done, ev.Total
	}
	if finalTotal == 0 || finalDone != finalTotal {
		t.Fatalf("jobs ended at %d/%d", finalDone, finalTotal)
	}
}
