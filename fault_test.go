package mptcpsim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"mptcpsim/internal/runner"
)

// TestWatchdogExpires: an exhausted WithWatchdog budget abandons the run
// with the typed ErrWatchdog error — matchable distinctly from ErrCanceled
// while still exposing context.DeadlineExceeded through the chain.
func TestWatchdogExpires(t *testing.T) {
	lab := NewLab(WithWatchdog(time.Nanosecond))
	_, err := lab.Run(context.Background(), validSpec())
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("Run under 1ns watchdog: err = %v, want ErrWatchdog", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("watchdog error hides the deadline cause: %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("watchdog expiry misclassified as cancellation: %v", err)
	}
	var apiError *Error
	if !errors.As(err, &apiError) || apiError.Op != "run" {
		t.Fatalf("watchdog error not a boundary *Error: %#v", err)
	}
}

// TestWatchdogHarmlessWhenGenerous: a run that finishes within the budget
// must be byte-identical to one without a watchdog (the probe slices at
// exact virtual-time boundaries).
func TestWatchdogHarmlessWhenGenerous(t *testing.T) {
	plain, err := NewLab().Run(context.Background(), validSpec())
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := NewLab(WithWatchdog(time.Minute)).Run(context.Background(), validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, guarded) {
		t.Fatalf("watchdog perturbed the run:\n%+v\n%+v", plain, guarded)
	}
	// A caller-cancelled context under a watchdog still reports ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = NewLab(WithWatchdog(time.Minute)).Run(ctx, validSpec())
	if !errors.Is(err, ErrCanceled) || errors.Is(err, ErrWatchdog) {
		t.Fatalf("pre-cancelled ctx under watchdog: err = %v, want ErrCanceled only", err)
	}
}

// TestErrJobPanicMatchesThroughBoundary: the root sentinel matches a
// recovered job panic through the *Error boundary wrapping, with the
// concrete *runner.PanicError still reachable via errors.As.
func TestErrJobPanicMatchesThroughBoundary(t *testing.T) {
	cause := &runner.PanicError{Job: 3, Value: "boom", Stack: []byte("stack")}
	err := classify("collect", "fig9", cause)
	if !errors.Is(err, ErrJobPanic) {
		t.Fatalf("boundary error does not match ErrJobPanic: %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("panic misclassified as cancellation: %v", err)
	}
	var pe *runner.PanicError
	if !errors.As(err, &pe) || pe.Job != 3 {
		t.Fatalf("concrete PanicError unreachable: %#v", err)
	}
	var apiError *Error
	if !errors.As(err, &apiError) || apiError.ID != "fig9" {
		t.Fatalf("boundary metadata lost: %#v", err)
	}
}

// TestTimelineThroughFacade drives the fault-injection layer through the
// public aliases: a spec built with TimelineEvent/LinkSetpoint/PathFlap,
// Float and RateTrace runs clean under Lab.Run.
func TestTimelineThroughFacade(t *testing.T) {
	sp := validSpec()
	sp.Timeline = append(
		RateTrace(0, 0.3, 0.3, 4, 1),
		TimelineEvent{AtSec: 0.9, Link: &LinkSetpoint{Link: 0, LossPct: Float(100)}},
		TimelineEvent{AtSec: 1.0, Link: &LinkSetpoint{Link: 0, LossPct: Float(0), DelayMs: Float(5)}},
		TimelineEvent{AtSec: 1.05, Path: &PathFlap{Path: 0}},
		TimelineEvent{AtSec: 1.1, Path: &PathFlap{Path: 0, Up: true}},
	)
	rep, err := NewLab().Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("timeline run violated invariants: %v", rep.Violations)
	}
	// A malformed timeline is rejected as an invalid spec.
	sp.Timeline[0].AtSec = -1
	if _, err := NewLab().Run(context.Background(), sp); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("negative-time timeline: err = %v, want ErrInvalidSpec", err)
	}
}

// TestGenFuzzSpec pins the replay contract: the facade rebuilds exactly
// the spec the fuzzer ran, it validates, and it carries a timeline.
func TestGenFuzzSpec(t *testing.T) {
	a, b := GenFuzzSpec(1, 17), GenFuzzSpec(1, 17)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenFuzzSpec not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	if len(a.Timeline) == 0 {
		t.Fatal("fuzz specs must carry a fault timeline by default")
	}
	if reflect.DeepEqual(a, GenFuzzSpec(1, 18)) {
		t.Fatal("different indices produced identical specs")
	}
}
