// Package mptcpsim reproduces "MPTCP is not Pareto-Optimal: Performance
// Issues and a Possible Solution" (Khalili, Gast, Popovic, Le Boudec;
// CoNEXT 2012 / IEEE-ACM ToN 2013) as a self-contained Go library: a
// packet-level network simulator, a TCP/MPTCP stack with the paper's
// coupled congestion controllers (OLIA, LIA, and the ε-family baselines),
// the paper's analytic fixed points, its fluid model, and a harness that
// regenerates every table and figure of the evaluation.
//
// This top-level package is the public facade, built around one engine:
//
//   - Lab (NewLab + functional options) is the simulation engine. Its
//     context-aware methods cover every long-running entry point —
//     Collect/RunAll regenerate the paper's tables and figures as
//     structured Results, Run executes declarative N-path scenarios, Fuzz
//     and Conform drive the invariant fuzzer and the cross-model
//     conformance suite, Campaign samples and aggregates thousands of
//     scenarios from a parameter-distribution population (with a
//     content-addressed result cache), Simulate runs custom
//     multipath-vs-TCP microbenchmarks, and Analyze evaluates the paper's
//     loss-throughput fixed points without simulation. Calls can be cancelled via their
//     context (errors wrap ErrCanceled) and observed in flight via
//     WithProgress; failures are matchable with errors.Is/As against the
//     typed error family in errors.go.
//   - The free functions mirroring those methods (RunExperiment,
//     FuzzScenarios, ...) are deprecated compatibility wrappers over a
//     default Lab, byte-identical in output.
//   - Rendering and comparison stay pure functions: RenderResult, Diff,
//     ParseFormat.
//
// The heavy machinery lives under internal/ (see DESIGN.md for the map).
package mptcpsim

import (
	"context"
	"io"
	"sort"

	"mptcpsim/internal/campaign"
	"mptcpsim/internal/harness"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/scenario"
	"mptcpsim/internal/topo"
)

// Experiment is one table or figure of the paper (see harness).
type Experiment = harness.Experiment

// Config scales experiment runs; see DefaultConfig and FullConfig.
type Config = harness.Config

// Result is the structured outcome of one experiment: metadata, typed
// columns, rows of cells (with units, 95% CIs and sample counts preserved),
// and time series for the trace experiments.
type Result = harness.Result

// Column, Cell and Series are the building blocks of a Result.
type (
	Column = harness.Column
	Cell   = harness.Cell
	Series = harness.Series
)

// Format selects how results are rendered: FormatText (the paper's aligned
// tables), FormatJSON, or FormatCSV.
type Format = harness.Format

// Render formats for experiment output.
const (
	FormatText = harness.FormatText
	FormatJSON = harness.FormatJSON
	FormatCSV  = harness.FormatCSV
)

// ParseFormat validates a format name ("text", "json", "csv"; "" means
// text).
func ParseFormat(s string) (Format, error) { return harness.ParseFormat(s) }

// DiffReport lists the per-cell deltas between two collected Results.
type DiffReport = harness.DiffReport

// Diff compares two collected Results cell by cell — the seed of regression
// tooling: collect the same experiment at two commits (or two algorithms,
// scales, worker counts) and gate on the numeric drift.
func Diff(a, b *Result) *DiffReport { return harness.Diff(a, b) }

// DefaultConfig returns the quick configuration (minutes for the whole
// registry: shorter runs, K=4 fabric, one seed).
func DefaultConfig() Config { return harness.DefaultConfig() }

// FullConfig returns the paper-scale configuration (120 s runs, 5 seeds,
// K=8 FatTree, 2-8 subflows).
func FullConfig() Config { return harness.FullConfig() }

// Experiments lists every reproducible table/figure in paper order.
func Experiments() []*Experiment { return harness.Experiments() }

// RenderResult writes a collected Result to w in the given format. Text
// output is byte-identical to the classic tables.
func RenderResult(r *Result, format Format, w io.Writer) error {
	return harness.Render(r, format, w)
}

// ScenarioSpec declaratively describes an arbitrary N-path topology —
// links (rate/delay/loss/queue discipline), paths over them, and flows
// (algorithm, path set, start/stop times, workload) — compiled into a
// runnable simulation by Lab.Run. See internal/scenario.
type ScenarioSpec = scenario.Spec

// ScenarioLink, ScenarioPath and ScenarioFlow are the building blocks of a
// ScenarioSpec.
type (
	ScenarioLink = scenario.LinkSpec
	ScenarioPath = scenario.PathSpec
	ScenarioFlow = scenario.FlowSpec
)

// ScenarioReport is the outcome of a Lab.Run call: per-flow and per-path
// goodput, per-queue counters, and every invariant violation detected
// (empty on a healthy run).
type ScenarioReport = scenario.RunReport

// TimelineEvent, LinkSetpoint and PathFlap build a ScenarioSpec's fault
// timeline: timestamped mid-run mutations — link shaping setpoints and
// path up/down flaps — executed by the compiled simulation without
// perturbing its determinism (the same spec and seed reproduce byte for
// byte, at any worker count).
type (
	TimelineEvent = scenario.TimelineEvent
	LinkSetpoint  = scenario.LinkSetpoint
	PathFlap      = scenario.PathFlap
)

// Float builds the optional *float64 setpoint fields of a LinkSetpoint in
// literals: LossPct: mptcpsim.Float(100) black-holes a link.
func Float(v float64) *float64 { return scenario.Float(v) }

// RateTrace expands a piecewise-constant rate trace into timeline setpoint
// events: link holds rates[0] from startSec, rates[1] from
// startSec+stepSec, and so on. Append the result to ScenarioSpec.Timeline,
// keeping overall time order.
func RateTrace(link int, startSec, stepSec float64, rates ...float64) []TimelineEvent {
	return scenario.RateTrace(link, startSec, stepSec, rates...)
}

// GenFuzzSpec deterministically rebuilds scenario index of a fuzz campaign
// anchored at seed — the replay entry for fuzz failures: run the returned
// spec with Lab.Run and inspect the report's Violations.
func GenFuzzSpec(seed int64, index int) ScenarioSpec {
	return *scenario.GenSpec(seed, index)
}

// PaperScenarioA expresses the paper's Fig. 1(a) testbed as a spec: N1
// type1 multipath users download over a private path and a path continuing
// across the shared AP; N2 type2 TCP users cross the shared AP alone.
// Capacities are per user (Mb/s); starts are jittered as in the testbed.
func PaperScenarioA(n1, n2 int, c1, c2 float64, algo string, seed int64, warmupSec, durationSec float64) ScenarioSpec {
	return *scenario.PaperScenarioA(n1, n2, c1, c2, algo, seed, warmupSec, durationSec)
}

// CampaignSpec declares a Monte Carlo campaign for Lab.Campaign: a
// population of network conditions as parameter distributions (path
// count, per-link rate/delay/loss, queue disciplines, controllers,
// schedulers, background load, fault timelines) plus the campaign size
// and seed. Start from DefaultCampaign and override fields. See
// internal/campaign.
type CampaignSpec = campaign.Spec

// CampaignResult is the outcome of a Lab.Campaign call: exact counters
// (simulated runs, cache hits, invariant violations) plus one
// CampaignAggregate per population metric, with a Digest fingerprinting
// the statistical content.
type CampaignResult = campaign.Result

// CampaignDist, CampaignIntRange, CampaignFaults and CampaignAggregate
// are the building blocks of a CampaignSpec and its Result.
type (
	CampaignDist      = campaign.Dist
	CampaignIntRange  = campaign.IntRange
	CampaignFaults    = campaign.FaultSpec
	CampaignAggregate = campaign.Aggregate
)

// DistConst returns the campaign distribution that always yields v.
func DistConst(v float64) CampaignDist { return campaign.Const(v) }

// DistUniform returns the uniform campaign distribution over [lo, hi].
func DistUniform(lo, hi float64) CampaignDist { return campaign.Uniform(lo, hi) }

// DistLogUniform returns the log-uniform campaign distribution over
// [lo, hi], lo > 0 — each decade of the range equally likely.
func DistLogUniform(lo, hi float64) CampaignDist { return campaign.LogUniform(lo, hi) }

// DistChoice returns the uniform discrete campaign distribution over vs.
func DistChoice(vs ...float64) CampaignDist { return campaign.Choice(vs...) }

// DefaultCampaign returns the reference campaign population — dual-homed
// users over log-uniform bottlenecks with background TCP load and a
// sprinkle of faults — the spec `mptcpsim campaign` and the serve API
// start from.
func DefaultCampaign() *CampaignSpec { return campaign.Default() }

// FuzzOptions and FuzzReport scale and summarize a scenario-fuzzing
// campaign (Lab.Fuzz).
type (
	FuzzOptions = scenario.FuzzOptions
	FuzzReport  = scenario.FuzzReport
)

// ConformanceOptions and ConformanceReport scale and summarize the
// cross-model conformance suite (Lab.Conform).
type (
	ConformanceOptions = scenario.ConformanceOptions
	ConformanceReport  = scenario.ConformanceReport
)

// algorithmNames is the sorted controller list, computed once at init.
var algorithmNames = func() []string {
	out := make([]string, 0, len(topo.Controllers))
	for name := range topo.Controllers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}()

// Algorithms lists the available congestion-control algorithms: "olia"
// (this paper's contribution), "lia" (RFC 6356), "uncoupled" (ε=2) and
// "fullycoupled" (ε=0).
func Algorithms() []string {
	out := make([]string, len(algorithmNames))
	copy(out, algorithmNames)
	return out
}

// Schedulers lists the available subflow schedulers for finite transfers
// (ScenarioFlow.Scheduler): "pull" (demand-driven default), "minrtt" (Linux
// default policy), "roundrobin", "ecf" (Earliest Completion First) and
// "redundant" (duplicate chunks on all paths).
func Schedulers() []string {
	return mptcp.Schedulers()
}

// --- Deprecated compatibility wrappers -------------------------------------
//
// Each free function below predates the Lab engine and now delegates to a
// default Lab under context.Background(). Output is byte-identical to the
// Lab methods; only cancellation, progress streaming and typed-error
// matching require migrating (see README "Migrating to the Lab API").

// CollectExperiment regenerates one table or figure by ID and returns its
// structured Result.
//
// Deprecated: use Lab.Collect, which adds cancellation, progress events
// and typed errors.
func CollectExperiment(id string, cfg Config) (*Result, error) {
	return NewLab(WithConfig(cfg)).Collect(context.Background(), id)
}

// RunExperiment regenerates one table or figure by ID, writing its text
// table to w — CollectExperiment followed by the text renderer.
//
// Deprecated: use Lab.Collect with RenderResult.
func RunExperiment(id string, cfg Config, w io.Writer) error {
	r, err := NewLab(WithConfig(cfg)).Collect(context.Background(), id)
	if err != nil {
		return err
	}
	return harness.RenderText(r, w)
}

// RunAll regenerates the experiments with the given IDs — the full registry
// in paper order when ids is empty — writing each experiment's banner and
// text table to w in listing order.
//
// Deprecated: use Lab.RunAll, which adds cancellation, progress events and
// typed errors.
func RunAll(ids []string, cfg Config, w io.Writer) error {
	return NewLab(WithConfig(cfg)).RunAll(context.Background(), ids, FormatText, w)
}

// RunAllFormat is RunAll with a Format option: text streams each
// experiment's banner and table, json streams one array of Result objects,
// csv streams one blank-line-separated block per experiment.
//
// Deprecated: use Lab.RunAll.
func RunAllFormat(ids []string, cfg Config, format Format, w io.Writer) error {
	return NewLab(WithConfig(cfg)).RunAll(context.Background(), ids, format, w)
}

// RunScenario validates, compiles and runs a declarative scenario.
//
// Deprecated: use Lab.Run, which adds cancellation and typed errors.
func RunScenario(sp ScenarioSpec) (*ScenarioReport, error) {
	return NewLab().Run(context.Background(), sp)
}

// FuzzScenarios generates N seeded random scenarios and runs each twice:
// once under the full invariant suite and once more to verify the run is
// byte-identical.
//
// Deprecated: use Lab.Fuzz, which adds cancellation, progress events and
// typed errors.
func FuzzScenarios(opts FuzzOptions) (*FuzzReport, error) {
	return NewLab().Fuzz(context.Background(), opts)
}

// RunConformance cross-checks the packet-level simulator against the
// paper's fluid model and fixed points.
//
// Deprecated: use Lab.Conform, which adds cancellation, progress events
// and typed errors.
func RunConformance(opts ConformanceOptions) (*ConformanceReport, error) {
	return NewLab().Conform(context.Background(), opts)
}

// Simulate runs a multipath user against background TCP flows over custom
// bottleneck paths and reports the goodput split.
//
// Deprecated: use Lab.Simulate, which adds cancellation and typed errors.
func Simulate(sc Scenario) (Report, error) {
	return NewLab().Simulate(context.Background(), sc)
}

// TwoPathAnalysis is the analytic counterpart of a two-path Simulate: given
// loss probabilities and RTTs it evaluates the paper's fixed points.
type TwoPathAnalysis struct {
	// TCPBestMbps is √(2/p)/rtt on the better path (goal 1's reference).
	TCPBestMbps float64
	// LIAMbps are LIA's per-path rates (Eq. 2).
	LIAMbps []float64
	// OLIAMbps are OLIA's Theorem-1 equilibrium rates.
	OLIAMbps []float64
}

// AnalyzeTwoPath evaluates the loss-throughput fixed points for a user with
// the given per-path loss probabilities and RTTs (seconds). MSS is 1500 B.
//
// Deprecated: use Lab.Analyze, which adds typed errors.
func AnalyzeTwoPath(loss, rtts []float64) (TwoPathAnalysis, error) {
	return NewLab().Analyze(loss, rtts)
}
