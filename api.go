// Package mptcpsim reproduces "MPTCP is not Pareto-Optimal: Performance
// Issues and a Possible Solution" (Khalili, Gast, Popovic, Le Boudec;
// CoNEXT 2012 / IEEE-ACM ToN 2013) as a self-contained Go library: a
// packet-level network simulator, a TCP/MPTCP stack with the paper's
// coupled congestion controllers (OLIA, LIA, and the ε-family baselines),
// the paper's analytic fixed points, its fluid model, and a harness that
// regenerates every table and figure of the evaluation.
//
// This top-level package is the public facade. Three entry points matter:
//
//   - Experiments / CollectExperiment / RunExperiment reproduce the paper's
//     tables and figures — as structured Results (typed columns, rows of
//     cells with units and 95% CIs) renderable as text, JSON or CSV, and
//     comparable with Diff.
//   - Simulate runs a custom multipath-vs-TCP microbenchmark over
//     user-defined bottleneck paths.
//   - AnalyzeTwoPath evaluates the paper's loss-throughput fixed points
//     without simulation.
//
// The heavy machinery lives under internal/ (see DESIGN.md for the map).
package mptcpsim

import (
	"fmt"
	"io"
	"sort"

	"mptcpsim/internal/core"
	"mptcpsim/internal/harness"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/scenario"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/topo"
)

// Experiment is one table or figure of the paper (see harness).
type Experiment = harness.Experiment

// Config scales experiment runs; see DefaultConfig and FullConfig.
type Config = harness.Config

// Result is the structured outcome of one experiment: metadata, typed
// columns, rows of cells (with units, 95% CIs and sample counts preserved),
// and time series for the trace experiments.
type Result = harness.Result

// Column, Cell and Series are the building blocks of a Result.
type (
	Column = harness.Column
	Cell   = harness.Cell
	Series = harness.Series
)

// Format selects how results are rendered: FormatText (the paper's aligned
// tables), FormatJSON, or FormatCSV.
type Format = harness.Format

// Render formats for experiment output.
const (
	FormatText = harness.FormatText
	FormatJSON = harness.FormatJSON
	FormatCSV  = harness.FormatCSV
)

// ParseFormat validates a format name ("text", "json", "csv"; "" means
// text).
func ParseFormat(s string) (Format, error) { return harness.ParseFormat(s) }

// DiffReport lists the per-cell deltas between two collected Results.
type DiffReport = harness.DiffReport

// Diff compares two collected Results cell by cell — the seed of regression
// tooling: collect the same experiment at two commits (or two algorithms,
// scales, worker counts) and gate on the numeric drift.
func Diff(a, b *Result) *DiffReport { return harness.Diff(a, b) }

// DefaultConfig returns the quick configuration (minutes for the whole
// registry: shorter runs, K=4 fabric, one seed).
func DefaultConfig() Config { return harness.DefaultConfig() }

// FullConfig returns the paper-scale configuration (120 s runs, 5 seeds,
// K=8 FatTree, 2-8 subflows).
func FullConfig() Config { return harness.FullConfig() }

// Experiments lists every reproducible table/figure in paper order.
func Experiments() []*Experiment { return harness.Experiments() }

// CollectExperiment regenerates one table or figure by ID (e.g. "fig9",
// "table3") and returns its structured Result. Independent simulation jobs
// inside the experiment (sweep points × seeds) run concurrently on
// cfg.Workers workers; the Result is identical for any worker count.
func CollectExperiment(id string, cfg Config) (*Result, error) {
	e := harness.Get(id)
	if e == nil {
		return nil, fmt.Errorf("mptcpsim: unknown experiment %q (have %v)", id, harness.IDs())
	}
	return e.CollectResult(cfg)
}

// RenderResult writes a collected Result to w in the given format. Text
// output is byte-identical to the classic tables.
func RenderResult(r *Result, format Format, w io.Writer) error {
	return harness.Render(r, format, w)
}

// RunExperiment regenerates one table or figure by ID (e.g. "fig9",
// "table3"), writing its rows to w — CollectExperiment followed by the
// text renderer. Independent simulation jobs inside the experiment (sweep
// points × seeds) run concurrently on cfg.Workers workers; the output is
// byte-identical for any worker count.
func RunExperiment(id string, cfg Config, w io.Writer) error {
	r, err := CollectExperiment(id, cfg)
	if err != nil {
		return err
	}
	return harness.RenderText(r, w)
}

// RunAll regenerates the experiments with the given IDs — the full registry
// in paper order when ids is empty — writing each experiment's banner and
// table to w in listing order. All experiments share one pool of
// cfg.Workers workers (0 selects GOMAXPROCS, 1 forces sequential
// execution); output bytes are identical to running them one at a time.
func RunAll(ids []string, cfg Config, w io.Writer) error {
	return harness.RunAll(cfg, ids, harness.FormatText, w)
}

// RunAllFormat is RunAll with a Format option: text streams each
// experiment's banner and table, json streams one array of Result objects,
// csv streams one blank-line-separated block per experiment. Results render
// in listing order as they complete, byte-identical at any worker count.
func RunAllFormat(ids []string, cfg Config, format Format, w io.Writer) error {
	return harness.RunAll(cfg, ids, format, w)
}

// ScenarioSpec declaratively describes an arbitrary N-path topology —
// links (rate/delay/loss/queue discipline), paths over them, and flows
// (algorithm, path set, start/stop times, workload) — compiled into a
// runnable simulation by RunScenario. See internal/scenario.
type ScenarioSpec = scenario.Spec

// ScenarioLink, ScenarioPath and ScenarioFlow are the building blocks of a
// ScenarioSpec.
type (
	ScenarioLink = scenario.LinkSpec
	ScenarioPath = scenario.PathSpec
	ScenarioFlow = scenario.FlowSpec
)

// ScenarioReport is the outcome of a RunScenario call: per-flow and
// per-path goodput, per-queue counters, and every invariant violation
// detected (empty on a healthy run).
type ScenarioReport = scenario.RunReport

// RunScenario validates, compiles and runs a declarative scenario,
// measuring goodput over [Warmup, Warmup+Duration] and checking the
// packet-conservation, capacity, monotonicity and queue-bound invariants.
func RunScenario(sp ScenarioSpec) (*ScenarioReport, error) { return scenario.Run(&sp) }

// FuzzOptions and FuzzReport scale and summarize a scenario-fuzzing
// campaign (FuzzScenarios).
type (
	FuzzOptions = scenario.FuzzOptions
	FuzzReport  = scenario.FuzzReport
)

// FuzzScenarios generates N seeded random scenarios and runs each twice:
// once under the full invariant suite and once more to verify the run is
// byte-identical. The campaign is deterministic per seed; any failure
// replays from its index alone.
func FuzzScenarios(opts FuzzOptions) (*FuzzReport, error) { return scenario.Fuzz(opts) }

// ConformanceOptions and ConformanceReport scale and summarize the
// cross-model conformance suite (RunConformance).
type (
	ConformanceOptions = scenario.ConformanceOptions
	ConformanceReport  = scenario.ConformanceReport
)

// RunConformance cross-checks the packet-level simulator against the
// paper's fluid model and fixed points: on 3- and 4-path topologies, the
// steady-state per-path goodput shares of OLIA, LIA and uncoupled
// multipath flows must match the fluid equilibrium within
// scenario.ShareTolerance, and a scenario-A run must match the Appendix-A
// LIA fixed point.
func RunConformance(opts ConformanceOptions) (*ConformanceReport, error) {
	return scenario.RunConformance(opts)
}

// algorithmNames is the sorted controller list, computed once at init.
var algorithmNames = func() []string {
	out := make([]string, 0, len(topo.Controllers))
	for name := range topo.Controllers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}()

// Algorithms lists the available congestion-control algorithms: "olia"
// (this paper's contribution), "lia" (RFC 6356), "uncoupled" (ε=2) and
// "fullycoupled" (ε=0).
func Algorithms() []string {
	out := make([]string, len(algorithmNames))
	copy(out, algorithmNames)
	return out
}

// Path describes one bottleneck path available to the multipath user in
// Simulate: a single congested link shared with some regular TCP flows.
type Path struct {
	// RateMbps is the bottleneck capacity in Mb/s.
	RateMbps float64
	// BackgroundTCP is the number of competing single-path TCP flows.
	BackgroundTCP int
	// DropTail selects a 100-packet drop-tail queue instead of the paper's
	// RED configuration.
	DropTail bool
}

// Scenario configures a Simulate run: one multipath user across the given
// paths, each shared with background TCP traffic. The propagation RTT is
// 80 ms as in the paper's testbed.
type Scenario struct {
	// Algorithm is one of Algorithms(); defaults to "olia".
	Algorithm string
	// Paths are the bottlenecks (at least one).
	Paths []Path
	// DurationSec is the simulated measurement time after a 2 s warm-up
	// (default 30).
	DurationSec float64
	// Seed makes the run reproducible (default 1).
	Seed int64
}

// PathReport is the per-path outcome of a Simulate run.
type PathReport struct {
	// MultipathMbps is the multipath user's goodput share on this path.
	MultipathMbps float64 `json:"multipath_mbps"`
	// BackgroundMbps is the mean goodput of one background TCP flow.
	BackgroundMbps float64 `json:"background_mbps"`
	// LossProb is the bottleneck's measured drop probability.
	LossProb float64 `json:"loss_prob"`
	// CwndPkts is the subflow's final congestion window.
	CwndPkts float64 `json:"cwnd_pkts"`
}

// Report is the outcome of a Simulate run.
type Report struct {
	// TotalMbps is the multipath user's aggregate goodput.
	TotalMbps float64 `json:"total_mbps"`
	// Paths holds per-path details, in Scenario order.
	Paths []PathReport `json:"paths"`
}

// Result converts the report into the structured result model, one row per
// path, so Simulate output can flow through the same renderers and Diff as
// the registry experiments.
func (r Report) Result() *Result {
	res := &Result{
		ID:    "simulate",
		Title: "Custom multipath-vs-TCP microbenchmark (mptcpsim.Simulate)",
		Columns: []Column{
			{Name: "path"},
			{Name: "multipath", Unit: "Mb/s"}, {Name: "background", Unit: "Mb/s"},
			{Name: "loss_prob"}, {Name: "cwnd", Unit: "pkts"},
		},
		Footer: []string{fmt.Sprintf("total %.2f Mb/s", r.TotalMbps)},
	}
	for i, p := range r.Paths {
		res.Rows = append(res.Rows, []Cell{
			harness.IntCell(i + 1),
			harness.NumCell(p.MultipathMbps), harness.NumCell(p.BackgroundMbps),
			harness.NumCell(p.LossProb), harness.NumCell(p.CwndPkts),
		})
	}
	return res
}

// Simulate runs a multipath user against background TCP flows over custom
// bottleneck paths and reports the goodput split — the programmatic
// equivalent of the paper's Fig. 6 microbenchmarks.
func Simulate(sc Scenario) (Report, error) {
	if len(sc.Paths) == 0 {
		return Report{}, fmt.Errorf("mptcpsim: scenario needs at least one path")
	}
	algo := sc.Algorithm
	if algo == "" {
		algo = "olia"
	}
	factory, ok := topo.Controllers[algo]
	if !ok {
		return Report{}, fmt.Errorf("mptcpsim: unknown algorithm %q (have %v)", algo, Algorithms())
	}
	for i, p := range sc.Paths {
		if p.RateMbps <= 0 {
			return Report{}, fmt.Errorf("mptcpsim: path %d rate must be positive, got %g Mb/s", i, p.RateMbps)
		}
		if p.BackgroundTCP < 0 {
			return Report{}, fmt.Errorf("mptcpsim: path %d has negative background flow count %d", i, p.BackgroundTCP)
		}
	}
	dur := sc.DurationSec
	if dur == 0 {
		dur = 30
	}
	if dur < 0 {
		return Report{}, fmt.Errorf("mptcpsim: negative duration")
	}
	seed := sc.Seed
	if seed < 0 {
		return Report{}, fmt.Errorf("mptcpsim: negative seed %d", seed)
	}
	if seed == 0 {
		seed = 1
	}

	s := sim.New(seed)
	rig := buildScenario(s, factory(), sc.Paths)
	warm := 2 * sim.Second
	end := warm + sim.Seconds(dur)
	rig.conn.Start(500 * sim.Millisecond)
	s.RunUntil(warm)
	mpBase := make([]int64, len(sc.Paths))
	bgBase := make([]int64, len(sc.Paths))
	qBase := make([]netem.Counters, len(sc.Paths))
	for i := range sc.Paths {
		mpBase[i] = rig.conn.Subflows()[i].Sink.GoodputBytes()
		for _, k := range rig.bg[i] {
			bgBase[i] += k.GoodputBytes()
		}
		qBase[i] = rig.queues[i].Stats()
	}
	s.RunUntil(end)

	var rep Report
	for i := range sc.Paths {
		pr := PathReport{
			MultipathMbps: stats.Mbps(rig.conn.Subflows()[i].Sink.GoodputBytes()-mpBase[i], dur),
			LossProb:      rig.queues[i].Stats().Sub(qBase[i]).LossProb(),
			CwndPkts:      rig.conn.CwndPkts(i),
		}
		if n := len(rig.bg[i]); n > 0 {
			var total int64
			for _, k := range rig.bg[i] {
				total += k.GoodputBytes()
			}
			pr.BackgroundMbps = stats.Mbps(total-bgBase[i], dur) / float64(n)
		}
		rep.TotalMbps += pr.MultipathMbps
		rep.Paths = append(rep.Paths, pr)
	}
	return rep, nil
}

// TwoPathAnalysis is the analytic counterpart of a two-path Simulate: given
// loss probabilities and RTTs it evaluates the paper's fixed points.
type TwoPathAnalysis struct {
	// TCPBestMbps is √(2/p)/rtt on the better path (goal 1's reference).
	TCPBestMbps float64
	// LIAMbps are LIA's per-path rates (Eq. 2).
	LIAMbps []float64
	// OLIAMbps are OLIA's Theorem-1 equilibrium rates.
	OLIAMbps []float64
}

// AnalyzeTwoPath evaluates the loss-throughput fixed points for a user with
// the given per-path loss probabilities and RTTs (seconds). MSS is 1500 B.
func AnalyzeTwoPath(loss, rtts []float64) (TwoPathAnalysis, error) {
	if len(loss) != len(rtts) || len(loss) == 0 {
		return TwoPathAnalysis{}, fmt.Errorf("mptcpsim: need matching non-empty loss and rtt slices")
	}
	for i := range loss {
		if loss[i] <= 0 || rtts[i] <= 0 {
			return TwoPathAnalysis{}, fmt.Errorf("mptcpsim: loss and rtt must be positive")
		}
	}
	var out TwoPathAnalysis
	var best float64
	for i := range loss {
		if r := core.TCPRate(loss[i], rtts[i]); r > best {
			best = r
		}
	}
	out.TCPBestMbps = stats.PktsPerSecMbps(best)
	for _, r := range core.LIARates(loss, rtts) {
		out.LIAMbps = append(out.LIAMbps, stats.PktsPerSecMbps(r))
	}
	for _, r := range core.OLIARates(loss, rtts) {
		out.OLIAMbps = append(out.OLIAMbps, stats.PktsPerSecMbps(r))
	}
	return out, nil
}
